//===- SoundnessPropertyTest.cpp - Verdicts vs. ground truth ----------------===//
//
// Part of the Blazer reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// End-to-end soundness properties against the concrete interpreter:
///  - per-trail bound soundness: every concrete trace's cost lies within
///    its covering trails' symbolic bounds;
///  - attack validation: for benchmarks with an attack specification, an
///    equal-low input pair with observably different costs actually exists
///    (the "feasibility of the specification" step the paper delegates to
///    symbolic execution or a programmer);
///  - safe-verdict consistency: empirical equal-low cost gaps of verified
///    benchmarks stay within the observer's threshold.
///
//===----------------------------------------------------------------------===//

#include "benchmarks/Benchmarks.h"
#include "core/QuotientCheck.h"

#include <algorithm>

#include <gtest/gtest.h>

using namespace blazer;

namespace {

InputGrid smallGrid() {
  InputGrid Grid;
  Grid.IntValues = {-1, 0, 1, 3};
  Grid.ArrayLengths = {0, 1, 2};
  Grid.ElementValues = {0, 1};
  Grid.MaxAssignments = 400;
  return Grid;
}

std::map<std::string, int64_t> symbolEnv(const CfgFunction &F,
                                         const InputAssignment &In) {
  std::map<std::string, int64_t> Env;
  for (const auto &[Name, Val] : In.Ints)
    Env[Name] = Val;
  for (const auto &[Name, Arr] : In.Arrays)
    Env[Name + ".len"] = static_cast<int64_t>(Arr.size());
  (void)F;
  return Env;
}

/// Rewrites \p In so that arrays with pinned lengths (key sizes) have
/// exactly the pinned length, repeating the original small pattern
/// cyclically — the bounds are only claimed for pin-satisfying inputs.
InputAssignment respectPins(const CfgFunction &F, const ObserverModel &Obs,
                            InputAssignment In) {
  for (const Param &P : F.Params) {
    if (P.Type != TypeKind::IntArray)
      continue;
    std::string Sym = P.Name + ".len";
    if (!Obs.isPinned(Sym))
      continue;
    int64_t Len = Obs.maxInput(Sym);
    std::vector<int64_t> Pattern = In.Arrays[P.Name];
    std::vector<int64_t> Expanded(static_cast<size_t>(Len), 0);
    for (size_t I = 0; I < Expanded.size(); ++I)
      Expanded[I] = Pattern.empty() ? 0 : Pattern[I % Pattern.size()];
    In.Arrays[P.Name] = std::move(Expanded);
  }
  return In;
}

class TrailBoundSoundness
    : public ::testing::TestWithParam<const BenchmarkProgram *> {};

/// Shared body for the sequential and parallel variants: analyzes \p B
/// with \p Jobs workers and checks every concrete trace's cost against the
/// bounds of each covering trail.
void checkTrailBoundSoundness(const BenchmarkProgram &B, int Jobs) {
  CfgFunction F = B.compile();
  BlazerOptions Opt = B.options();
  Opt.Jobs = Jobs;
  BlazerResult R = analyzeFunction(F, Opt);
  EdgeAlphabet A = EdgeAlphabet::forFunction(F);

  std::vector<InputAssignment> Inputs;
  for (InputAssignment &In : enumerateInputs(F, smallGrid()))
    Inputs.push_back(respectPins(F, B.options().Observer, std::move(In)));
  std::sort(Inputs.begin(), Inputs.end(),
            [](const InputAssignment &X, const InputAssignment &Y) {
              return X.str() < Y.str();
            });
  Inputs.erase(std::unique(Inputs.begin(), Inputs.end(),
                           [](const InputAssignment &X,
                              const InputAssignment &Y) {
                             return X.str() == Y.str();
                           }),
               Inputs.end());

  size_t Checked = 0;
  for (const InputAssignment &In : Inputs) {
    TraceResult TR = runFunction(F, In);
    if (!TR.Ok)
      continue;
    std::map<std::string, int64_t> Env = symbolEnv(F, In);
    for (const Trail &T : R.Tree) {
      if (!T.feasible())
        continue;
      if (!traceInTrail(T.Auto, A, TR.Edges))
        continue;
      ++Checked;
      EXPECT_LE(T.Bounds.Lo.evaluate(Env), TR.Cost)
          << B.Name << " jobs=" << Jobs << " tr" << T.Id << " input "
          << In.str();
      if (T.Bounds.hasUpper()) {
        EXPECT_GE(T.Bounds.Hi->evaluate(Env), TR.Cost)
            << B.Name << " jobs=" << Jobs << " tr" << T.Id << " input "
            << In.str();
      }
    }
  }
  EXPECT_GT(Checked, 0u) << B.Name;
}

TEST_P(TrailBoundSoundness, EveryTraceWithinCoveringTrailBounds) {
  checkTrailBoundSoundness(*GetParam(), /*Jobs=*/1);
}

TEST_P(TrailBoundSoundness, EveryTraceWithinCoveringTrailBoundsParallel) {
  // The same soundness claim must hold when the trail tree is built by the
  // parallel driver — worker scheduling must not change any bound.
  checkTrailBoundSoundness(*GetParam(), /*Jobs=*/4);
}

std::vector<const BenchmarkProgram *> allPtrs() {
  std::vector<const BenchmarkProgram *> Out;
  for (const BenchmarkProgram &B : allBenchmarks())
    Out.push_back(&B);
  return Out;
}

INSTANTIATE_TEST_SUITE_P(
    Table1, TrailBoundSoundness, ::testing::ValuesIn(allPtrs()),
    [](const ::testing::TestParamInfo<const BenchmarkProgram *> &Info) {
      return Info.param->Name;
    });

//===----------------------------------------------------------------------===//
// Attack-specification feasibility
//===----------------------------------------------------------------------===//

/// The unsafe benchmarks with concrete equal-low witnesses reachable on a
/// small grid.
class AttackWitness : public ::testing::TestWithParam<const char *> {};

TEST_P(AttackWitness, EqualLowPairWithDifferentCostExists) {
  const BenchmarkProgram *B = findBenchmark(GetParam());
  ASSERT_NE(B, nullptr);
  CfgFunction F = B->compile();
  BlazerResult R = analyzeFunction(F, B->options());
  ASSERT_EQ(R.Verdict, VerdictKind::Attack) << R.treeString(F);

  InputGrid Grid = smallGrid();
  Grid.IntValues = {-2, 0, 1, 4};
  Grid.ArrayLengths = {0, 2, 3};
  EmpiricalTcf E = empiricalTimingCheck(F, enumerateInputs(F, Grid));
  EXPECT_GT(E.MaxGapEqualLow, 0) << GetParam();
  ASSERT_TRUE(E.Witness.has_value());
  EXPECT_TRUE(InputAssignment::agreeOn(F, SecurityLevel::Public,
                                       E.Witness->first,
                                       E.Witness->second));
}

INSTANTIATE_TEST_SUITE_P(
    Unsafe, AttackWitness,
    ::testing::Values("array_unsafe", "loopAndbranch_unsafe",
                      "notaint_unsafe", "sanity_unsafe",
                      "straightline_unsafe", "unixlogin_unsafe",
                      "modPow1_unsafe", "modPow2_unsafe", "pwdEqual_unsafe",
                      "k96_unsafe", "login_unsafe"),
    [](const ::testing::TestParamInfo<const char *> &Info) {
      return std::string(Info.param);
    });

//===----------------------------------------------------------------------===//
// Safe verdicts vs. empirical gaps
//===----------------------------------------------------------------------===//

/// For safe MicroBench programs verified under the degree model with small
/// inputs, the empirical equal-low gap must stay modest; for the
/// constant-time ones it must stay within epsilon.
class SafeEmpirical : public ::testing::TestWithParam<const char *> {};

TEST_P(SafeEmpirical, ConstantTimeBenchmarksHaveTinyGap) {
  const BenchmarkProgram *B = findBenchmark(GetParam());
  ASSERT_NE(B, nullptr);
  CfgFunction F = B->compile();
  BlazerResult R = analyzeFunction(F, B->options());
  ASSERT_EQ(R.Verdict, VerdictKind::Safe);
  EmpiricalTcf E = empiricalTimingCheck(F, enumerateInputs(F, smallGrid()));
  // These benchmarks are constant-time up to the observer epsilon.
  EXPECT_LE(E.MaxGapEqualLow, B->options().Observer.threshold())
      << (E.Witness ? E.Witness->first.str() + " vs " +
                          E.Witness->second.str()
                    : "");
}

INSTANTIATE_TEST_SUITE_P(
    ConstantTimeSafe, SafeEmpirical,
    ::testing::Values("sanity_safe", "straightline_safe", "unixlogin_safe",
                      "nosecret_safe", "pwdEqual_safe", "login_safe",
                      "gpt14_safe", "k96_safe", "modPow1_safe",
                      "modPow2_safe"),
    [](const ::testing::TestParamInfo<const char *> &Info) {
      return std::string(Info.param);
    });

TEST(SafeEmpiricalSpecial, ArraySafeGapBoundedByLowLength) {
  // array_safe is safe under the degree model: both secret arms are linear
  // in low.length, so equal-low runs differ by at most a constant factor
  // of the iteration-cost difference.
  const BenchmarkProgram *B = findBenchmark("array_safe");
  CfgFunction F = B->compile();
  InputGrid Grid = smallGrid();
  EmpiricalTcf E = empiricalTimingCheck(F, enumerateInputs(F, Grid));
  // Low length <= 2 in the grid: tiny per-iteration delta only.
  EXPECT_LE(E.MaxGapEqualLow, 16);
}

} // namespace
