//===- TaintTest.cpp - Tests for the information-flow analysis -------------===//
//
// Part of the Blazer reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "dataflow/Taint.h"

#include <gtest/gtest.h>

using namespace blazer;

namespace {

CfgFunction compile(const std::string &Src) {
  auto F = compileSingleFunction(Src, BuiltinRegistry::standard());
  EXPECT_TRUE(static_cast<bool>(F)) << (F ? "" : F.diag().str());
  return F.take();
}

int branchBlock(const CfgFunction &F, const std::string &CondText) {
  for (const BasicBlock &B : F.Blocks)
    if (B.Term == BasicBlock::TermKind::Branch &&
        exprToString(B.Cond) == CondText)
      return B.Id;
  ADD_FAILURE() << "no branch with condition " << CondText;
  return -1;
}

TEST(Taint, ParametersSeedTheirLevels) {
  CfgFunction F = compile("fn f(public l: int, secret h: int) { }");
  TaintInfo T = runTaintAnalysis(F);
  EXPECT_TRUE(T.isLowVar("l"));
  EXPECT_FALSE(T.isHighVar("l"));
  EXPECT_TRUE(T.isHighVar("h"));
  EXPECT_FALSE(T.isLowVar("h"));
}

TEST(Taint, ExplicitFlowThroughAssignment) {
  CfgFunction F = compile(
      "fn f(public l: int, secret h: int) "
      "{ var a: int = l + 1; var b: int = h * 2; var c: int = a + b; }");
  TaintInfo T = runTaintAnalysis(F);
  EXPECT_TRUE(T.isLowVar("a"));
  EXPECT_FALSE(T.isHighVar("a"));
  EXPECT_TRUE(T.isHighVar("b"));
  EXPECT_FALSE(T.isLowVar("b"));
  // c mixes both.
  EXPECT_TRUE(T.isLowVar("c"));
  EXPECT_TRUE(T.isHighVar("c"));
}

TEST(Taint, UntaintedConstantStaysClean) {
  CfgFunction F = compile(
      "fn f(public l: int, secret h: int) { var k: int = 7; }");
  TaintInfo T = runTaintAnalysis(F);
  EXPECT_FALSE(T.isLowVar("k"));
  EXPECT_FALSE(T.isHighVar("k"));
}

TEST(Taint, ImplicitFlowThroughBranch) {
  // x is only assigned constants, but *which* constant depends on h.
  CfgFunction F = compile(R"(
    fn f(secret h: int) {
      var x: int = 0;
      if (h > 0) { x = 1; } else { x = 2; }
    }
  )");
  TaintInfo T = runTaintAnalysis(F);
  EXPECT_TRUE(T.isHighVar("x"));
}

TEST(Taint, ImplicitFlowThroughLoopTripCount) {
  // i's final value equals h: tainted via the loop guard.
  CfgFunction F = compile(R"(
    fn f(secret h: int) {
      var i: int = 0;
      while (i < h) { i = i + 1; }
    }
  )");
  TaintInfo T = runTaintAnalysis(F);
  EXPECT_TRUE(T.isHighVar("i"));
}

TEST(Taint, NoImplicitFlowAfterJoin) {
  // y is assigned after the secret branch rejoins: not tainted.
  CfgFunction F = compile(R"(
    fn f(secret h: int) {
      var x: int = 0;
      if (h > 0) { x = 1; }
      var y: int = 3;
    }
  )");
  TaintInfo T = runTaintAnalysis(F);
  EXPECT_TRUE(T.isHighVar("x"));
  EXPECT_FALSE(T.isHighVar("y"));
}

TEST(Taint, EarlyReturnTaintsTail) {
  // Reaching the tail code at all depends on h, so its assignments do too.
  CfgFunction F = compile(R"(
    fn f(secret h: int) -> int {
      if (h > 0) { return 0; }
      var y: int = 3;
      return y;
    }
  )");
  TaintInfo T = runTaintAnalysis(F);
  EXPECT_TRUE(T.isHighVar("y"));
}

TEST(Taint, ArrayContentAndLengthShareTaint) {
  CfgFunction F = compile(R"(
    fn f(public g: int[], secret p: int[]) {
      var a: int = g[0];
      var b: int = p.length;
    }
  )");
  TaintInfo T = runTaintAnalysis(F);
  EXPECT_TRUE(T.isLowVar("a"));
  EXPECT_FALSE(T.isHighVar("a"));
  EXPECT_TRUE(T.isHighVar("b"));
}

TEST(Taint, ArrayStoreTaintsArray) {
  CfgFunction F = compile(R"(
    fn f(secret h: int, public buf: int[]) {
      buf[0] = h;
      var y: int = buf[0];
    }
  )");
  TaintInfo T = runTaintAnalysis(F);
  EXPECT_TRUE(T.isHighVar("buf"));
  EXPECT_TRUE(T.isHighVar("y"));
}

TEST(Taint, FixpointIteratesTransitively) {
  // h -> a (explicit), a's branch -> b (implicit), b -> c (explicit).
  CfgFunction F = compile(R"(
    fn f(secret h: int) {
      var a: int = h;
      var b: int = 0;
      if (a > 0) { b = 1; }
      var c: int = b + 1;
    }
  )");
  TaintInfo T = runTaintAnalysis(F);
  EXPECT_TRUE(T.isHighVar("a"));
  EXPECT_TRUE(T.isHighVar("b"));
  EXPECT_TRUE(T.isHighVar("c"));
}

//===----------------------------------------------------------------------===//
// Branch annotations (§4.2): the l / h / l,h marks
//===----------------------------------------------------------------------===//

TEST(TaintMarks, LowOnlyBranch) {
  CfgFunction F = compile(
      "fn f(public l: int, secret h: int) { if (l > 0) { skip; } }");
  TaintInfo T = runTaintAnalysis(F);
  TaintMark M = T.markOf(branchBlock(F, "(l > 0)"));
  EXPECT_TRUE(M.Low);
  EXPECT_FALSE(M.High);
}

TEST(TaintMarks, HighOnlyBranch) {
  CfgFunction F = compile(
      "fn f(public l: int, secret h: int) { if (h == 0) { skip; } }");
  TaintInfo T = runTaintAnalysis(F);
  TaintMark M = T.markOf(branchBlock(F, "(h == 0)"));
  EXPECT_FALSE(M.Low);
  EXPECT_TRUE(M.High);
}

TEST(TaintMarks, MixedBranch) {
  CfgFunction F = compile(
      "fn f(public l: int, secret h: int) { if (l < h) { skip; } }");
  TaintInfo T = runTaintAnalysis(F);
  TaintMark M = T.markOf(branchBlock(F, "(l < h)"));
  EXPECT_TRUE(M.Low);
  EXPECT_TRUE(M.High);
}

TEST(TaintMarks, UntaintedBranchUnmarked) {
  CfgFunction F = compile(
      "fn f(public l: int) { var k: int = 3; if (k > 0) { skip; } }");
  TaintInfo T = runTaintAnalysis(F);
  TaintMark M = T.markOf(branchBlock(F, "(k > 0)"));
  EXPECT_FALSE(M.Low);
  EXPECT_FALSE(M.High);
}

TEST(TaintMarks, LoopCounterUnderSecretReturnsBecomesHigh) {
  // The login_unsafe situation: early secret-guarded returns make the
  // loop counter (and hence the public-looking guard) secret-dependent.
  CfgFunction F = compile(R"(
    fn f(public g: int[], secret p: int[]) -> bool {
      var i: int = 0;
      while (i < g.length) {
        if (i >= p.length) { return false; }
        i = i + 1;
      }
      return true;
    }
  )");
  TaintInfo T = runTaintAnalysis(F);
  TaintMark Guard = T.markOf(branchBlock(F, "(i < g.length)"));
  EXPECT_TRUE(Guard.Low);
  EXPECT_TRUE(Guard.High);
}

TEST(TaintMarks, LoopCounterWithoutEscapesStaysLow) {
  // The login_safe situation: no early exits, so i stays public.
  CfgFunction F = compile(R"(
    fn f(public g: int[], secret p: int[]) -> int {
      var acc: int = 0;
      var i: int = 0;
      while (i < g.length) {
        if (i < p.length) { acc = acc + 1; } else { acc = acc + 1; }
        i = i + 1;
      }
      return 0;
    }
  )");
  TaintInfo T = runTaintAnalysis(F);
  TaintMark Guard = T.markOf(branchBlock(F, "(i < g.length)"));
  EXPECT_TRUE(Guard.Low);
  EXPECT_FALSE(Guard.High);
  // acc is assigned under the secret comparison though.
  EXPECT_TRUE(T.isHighVar("acc"));
}

//===----------------------------------------------------------------------===//
// Symbol classification for bounds
//===----------------------------------------------------------------------===//

TEST(TaintSymbols, LengthSymbolsFollowTheirArray) {
  CfgFunction F = compile("fn f(public g: int[], secret p: int[]) { }");
  TaintInfo T = runTaintAnalysis(F);
  EXPECT_FALSE(T.isHighSymbol(lengthSymbol("g")));
  EXPECT_TRUE(T.isHighSymbol(lengthSymbol("p")));
  EXPECT_FALSE(T.isHighSymbol("g"));
  EXPECT_TRUE(T.isHighSymbol("p"));
  EXPECT_FALSE(T.isHighSymbol("unknown.len"));
}

TEST(TaintSymbols, LengthSymbolSpelling) {
  EXPECT_EQ(lengthSymbol("guess"), "guess.len");
}

} // namespace
