//===- ThreadPoolTest.cpp - Work-stealing pool unit tests -------------------===//
//
// Part of the Blazer reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Unit tests for the worker pool under the parallel trail-tree analysis:
/// every iteration runs exactly once into its own slot, nested loops make
/// progress (the caller drains its own iteration space), exceptions
/// propagate to the launching thread, and a concurrency-1 pool runs
/// everything inline without starting threads.
///
//===----------------------------------------------------------------------===//

#include "support/Budget.h"
#include "support/ThreadPool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <set>
#include <stdexcept>
#include <thread>
#include <vector>

using namespace blazer;

namespace {

TEST(ThreadPool, EveryIterationRunsExactlyOnce) {
  ThreadPool Pool(4);
  const size_t N = 1000;
  std::vector<std::atomic<int>> Hits(N);
  Pool.parallelFor(N, [&](size_t I) { Hits[I].fetch_add(1); });
  for (size_t I = 0; I < N; ++I)
    EXPECT_EQ(Hits[I].load(), 1) << "iteration " << I;
}

TEST(ThreadPool, ResultsArePositionStable) {
  ThreadPool Pool(8);
  const size_t N = 512;
  std::vector<size_t> Slots(N, ~size_t{0});
  Pool.parallelFor(N, [&](size_t I) { Slots[I] = I * I; });
  for (size_t I = 0; I < N; ++I)
    EXPECT_EQ(Slots[I], I * I);
}

TEST(ThreadPool, ConcurrencyOneStartsNoThreadsAndRunsInOrder) {
  ThreadPool Pool(1);
  EXPECT_EQ(Pool.concurrency(), 1u);
  std::vector<size_t> Order;
  std::thread::id Caller = std::this_thread::get_id();
  Pool.parallelFor(100, [&](size_t I) {
    EXPECT_EQ(std::this_thread::get_id(), Caller);
    Order.push_back(I);
  });
  for (size_t I = 0; I < Order.size(); ++I)
    EXPECT_EQ(Order[I], I); // Inline execution preserves iteration order.
}

TEST(ThreadPool, ZeroSelectsHardwareConcurrency) {
  ThreadPool Pool(0);
  EXPECT_EQ(Pool.concurrency(), ThreadPool::defaultConcurrency());
  EXPECT_GE(Pool.concurrency(), 1u);
}

TEST(ThreadPool, EmptyLoopReturnsImmediately) {
  ThreadPool Pool(4);
  bool Ran = false;
  Pool.parallelFor(0, [&](size_t) { Ran = true; });
  EXPECT_FALSE(Ran);
}

TEST(ThreadPool, NestedLoopsMakeProgress) {
  // Outer tasks each spawn an inner loop; the callers drain their own
  // iteration spaces, so this terminates even when every worker is busy
  // with an outer task.
  ThreadPool Pool(4);
  const size_t Outer = 16, Inner = 64;
  std::vector<std::atomic<int>> Sums(Outer);
  Pool.parallelFor(Outer, [&](size_t O) {
    Pool.parallelFor(Inner, [&, O](size_t) { Sums[O].fetch_add(1); });
  });
  for (size_t O = 0; O < Outer; ++O)
    EXPECT_EQ(Sums[O].load(), static_cast<int>(Inner));
}

TEST(ThreadPool, FirstExceptionPropagatesAfterDraining) {
  ThreadPool Pool(4);
  const size_t N = 200;
  std::vector<std::atomic<int>> Hits(N);
  EXPECT_THROW(Pool.parallelFor(N,
                                [&](size_t I) {
                                  Hits[I].fetch_add(1);
                                  if (I == 17)
                                    throw std::runtime_error("boom");
                                }),
               std::runtime_error);
  // The loop drains fully before rethrowing: no iteration is lost.
  int Total = 0;
  for (size_t I = 0; I < N; ++I)
    Total += Hits[I].load();
  EXPECT_EQ(Total, static_cast<int>(N));
}

TEST(ThreadPool, ManySmallLoopsStress) {
  ThreadPool Pool(8);
  for (int Round = 0; Round < 200; ++Round) {
    std::atomic<int> Count{0};
    Pool.parallelFor(Round % 7 + 1, [&](size_t) { Count.fetch_add(1); });
    ASSERT_EQ(Count.load(), Round % 7 + 1);
  }
}

TEST(ThreadPool, ParallelForWithBudgetPropagatesScopes) {
  // Work stolen by a pool worker must observe the launching thread's
  // budget and phase label (both are thread-local installations).
  ThreadPool Pool(4);
  AnalysisBudget Budget;
  BudgetScope Scope(&Budget);
  PhaseScope Phase("pool-test-phase");
  const size_t N = 256;
  std::atomic<int> Misses{0};
  parallelForWithBudget(&Pool, N, [&](size_t) {
    if (BudgetScope::current() != &Budget)
      Misses.fetch_add(1);
    if (std::string(PhaseScope::current()) != "pool-test-phase")
      Misses.fetch_add(1);
    BudgetScope::current()->countStates();
  });
  EXPECT_EQ(Misses.load(), 0);
  EXPECT_EQ(Budget.usage().States, N);
}

TEST(ThreadPool, ParallelForWithBudgetNullPoolRunsInline) {
  AnalysisBudget Budget;
  BudgetScope Scope(&Budget);
  std::vector<size_t> Order;
  parallelForWithBudget(nullptr, 10, [&](size_t I) { Order.push_back(I); });
  ASSERT_EQ(Order.size(), 10u);
  for (size_t I = 0; I < 10; ++I)
    EXPECT_EQ(Order[I], I);
}

//===----------------------------------------------------------------------===//
// Teardown and stress
//===----------------------------------------------------------------------===//

TEST(ThreadPoolTeardown, DestructionRightAfterThrowingLoops) {
  // A pool destroyed immediately after a loop that threw must join its
  // workers cleanly: no worker may still hold a reference to the dead
  // loop's state.
  for (int Round = 0; Round < 50; ++Round) {
    ThreadPool Pool(4);
    EXPECT_THROW(Pool.parallelFor(64,
                                  [&](size_t I) {
                                    if (I % 5 == 0)
                                      throw std::runtime_error("boom");
                                  }),
                 std::runtime_error);
    // Destructor runs here with workers possibly mid-wakeup.
  }
}

TEST(ThreadPoolTeardown, ChurnConstructDestroy) {
  // Rapid construct/use/destroy cycles: the destructor must not drop
  // queued work or deadlock on the stop flag.
  for (int Round = 0; Round < 100; ++Round) {
    ThreadPool Pool(Round % 8 + 1);
    std::atomic<int> Count{0};
    Pool.parallelFor(Round % 13 + 1, [&](size_t) { Count.fetch_add(1); });
    ASSERT_EQ(Count.load(), Round % 13 + 1);
  }
}

TEST(ThreadPoolTeardown, ConcurrentCallersThenDestroy) {
  // Several caller threads drive loops on one shared pool; after they
  // join, destruction must find the pool quiescent with every iteration
  // accounted for.
  auto Pool = std::make_unique<ThreadPool>(4);
  const int Callers = 8, Loops = 20;
  const size_t N = 64;
  std::atomic<size_t> Total{0};
  std::vector<std::thread> Threads;
  for (int C = 0; C < Callers; ++C)
    Threads.emplace_back([&] {
      for (int L = 0; L < Loops; ++L)
        Pool->parallelFor(N, [&](size_t) { Total.fetch_add(1); });
    });
  for (std::thread &T : Threads)
    T.join();
  EXPECT_EQ(Total.load(), static_cast<size_t>(Callers) * Loops * N);
  Pool.reset(); // Explicit teardown while the test can still report hangs.
}

TEST(ThreadPoolTeardown, OversubscribedFirstExceptionWins) {
  // 4x hardware oversubscription: many workers throw concurrently; the
  // caller sees exactly one exception (the first recorded) and the loop
  // still drains every iteration.
  ThreadPool Pool(4 * ThreadPool::defaultConcurrency());
  const size_t N = 2000;
  std::vector<std::atomic<int>> Hits(N);
  std::atomic<int> Thrown{0};
  bool Caught = false;
  try {
    Pool.parallelFor(N, [&](size_t I) {
      Hits[I].fetch_add(1);
      if (I % 3 == 0) {
        Thrown.fetch_add(1);
        throw std::runtime_error("iteration " + std::to_string(I));
      }
    });
  } catch (const std::runtime_error &E) {
    Caught = true;
    EXPECT_NE(std::string(E.what()).find("iteration"), std::string::npos);
  }
  EXPECT_TRUE(Caught);
  EXPECT_GT(Thrown.load(), 1); // Genuinely concurrent failures...
  int Total = 0;
  for (size_t I = 0; I < N; ++I) {
    EXPECT_EQ(Hits[I].load(), 1) << "iteration " << I; // ...none dropped.
    Total += Hits[I].load();
  }
  EXPECT_EQ(Total, static_cast<int>(N));
}

TEST(ThreadPoolTeardown, DestroyAfterManyNestedThrowingLoops) {
  for (int Round = 0; Round < 20; ++Round) {
    ThreadPool Pool(4);
    std::atomic<int> Inner{0};
    EXPECT_THROW(
        Pool.parallelFor(8,
                         [&](size_t O) {
                           Pool.parallelFor(
                               16, [&](size_t) { Inner.fetch_add(1); });
                           if (O == 3)
                             throw std::runtime_error("outer");
                         }),
        std::runtime_error);
    // Inner loops completed in full even though an outer task threw.
    EXPECT_EQ(Inner.load(), 8 * 16);
  }
}

} // namespace
