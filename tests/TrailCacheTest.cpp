//===- TrailCacheTest.cpp - Sharded trail-bound cache under contention -----===//
//
// Part of the Blazer reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Exercises ShardedTrailCache's concurrency contract from the same
/// work-stealing pool the analysis uses: compute-once under same-key
/// contention, waiter-retake after an uncacheable (budget-degraded)
/// publish, FIFO eviction accounting, and exception transparency. The
/// end-to-end half drives real analyses through BoundAnalysis' cache
/// wiring and proves that a budget-tripped run never pollutes a shared
/// cache that later budget-free runs will hit.
///
//===----------------------------------------------------------------------===//

#include "benchmarks/Benchmarks.h"
#include "core/Blazer.h"
#include "support/FaultInjector.h"
#include "support/ThreadPool.h"
#include "support/TrailBoundCache.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <memory>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

using namespace blazer;

namespace {

//===----------------------------------------------------------------------===//
// Unit level: ShardedTrailCache<int> hammered from the pool
//===----------------------------------------------------------------------===//

TEST(TrailCacheTest, ComputeOnceUnderSameKeyContention) {
  ShardedTrailCache<int> Cache;
  ThreadPool Pool(8);
  constexpr size_t Iters = 512;
  constexpr int Keys = 7;
  std::atomic<int> Computes{0};

  Pool.parallelFor(Iters, [&](size_t I) {
    int K = static_cast<int>(I) % Keys;
    int V = Cache.getOrCompute("key-" + std::to_string(K), [&] {
      Computes.fetch_add(1, std::memory_order_relaxed);
      // Dwell long enough that other workers pile up on the in-flight
      // entry instead of racing past it.
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
      return std::pair<int, bool>(K * 10, true);
    });
    EXPECT_EQ(V, K * 10);
  });

  EXPECT_EQ(Computes.load(), Keys);
  TrailCacheStats St = Cache.stats();
  EXPECT_EQ(St.Misses, static_cast<uint64_t>(Keys));
  EXPECT_EQ(St.Hits, static_cast<uint64_t>(Iters - Keys));
  EXPECT_EQ(St.Entries, static_cast<uint64_t>(Keys));
  EXPECT_EQ(St.Evictions, 0u);
}

TEST(TrailCacheTest, UncacheableResultIsNeverStored) {
  ShardedTrailCache<int> Cache;
  std::atomic<int> Computes{0};
  for (int I = 0; I < 5; ++I) {
    int V = Cache.getOrCompute("degraded", [&] {
      Computes.fetch_add(1, std::memory_order_relaxed);
      return std::pair<int, bool>(-1, false);
    });
    EXPECT_EQ(V, -1);
  }
  // Every call recomputed: nothing was published.
  EXPECT_EQ(Computes.load(), 5);
  TrailCacheStats St = Cache.stats();
  EXPECT_EQ(St.Entries, 0u);
  EXPECT_EQ(St.Misses, 5u);
  EXPECT_EQ(St.Hits, 0u);
}

TEST(TrailCacheTest, WaitersRetakeOwnershipAfterUncacheablePublish) {
  // The first computation on the key declines to cache (budget-degraded);
  // one of the waiting threads must become the new owner and recompute
  // rather than returning a phantom entry or deadlocking. Eventually a
  // cacheable result publishes and the stragglers hit it.
  ShardedTrailCache<int> Cache;
  ThreadPool Pool(8);
  std::atomic<int> Computes{0};

  Pool.parallelFor(64, [&](size_t) {
    int V = Cache.getOrCompute("contended", [&] {
      int N = Computes.fetch_add(1, std::memory_order_relaxed);
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
      // First compute is degraded; every retake is cacheable.
      return std::pair<int, bool>(42, N > 0);
    });
    EXPECT_EQ(V, 42);
  });

  // At least the degraded compute and one retake ran; once a retake
  // published, everyone else hit.
  EXPECT_GE(Computes.load(), 2);
  TrailCacheStats St = Cache.stats();
  EXPECT_EQ(St.Entries, 1u);
  EXPECT_EQ(St.Hits + St.Misses, 64u);
}

TEST(TrailCacheTest, EvictionIsFifoAndCounted) {
  // MaxPerShard = 1: the second ready key landing in a shard evicts the
  // first. Across 64 distinct keys every shard ends with exactly one
  // entry.
  ShardedTrailCache<int> Cache(/*MaxPerShard=*/1);
  for (int I = 0; I < 64; ++I)
    Cache.getOrCompute("k" + std::to_string(I),
                       [&] { return std::pair<int, bool>(I, true); });
  TrailCacheStats St = Cache.stats();
  EXPECT_EQ(St.Misses, 64u);
  EXPECT_LE(St.Entries, 16u); // one per shard at most
  EXPECT_EQ(St.Evictions, 64u - St.Entries);
}

TEST(TrailCacheTest, ExceptionAbandonsEntryAndUnblocksKey) {
  ShardedTrailCache<int> Cache;
  EXPECT_THROW(Cache.getOrCompute("boom",
                                  [&]() -> std::pair<int, bool> {
                                    throw std::runtime_error("compute died");
                                  }),
               std::runtime_error);
  // The key is not wedged by the dead in-flight entry.
  int V = Cache.getOrCompute("boom",
                             [&] { return std::pair<int, bool>(7, true); });
  EXPECT_EQ(V, 7);
  EXPECT_EQ(Cache.stats().Entries, 1u);
}

TEST(TrailCacheTest, InjectedDeathTriggersRetakeAndCachesExactlyOnce) {
  // Pick a seed whose transfer-site decision fires at index 0 and stays
  // quiet for the next 16 indices: the first compute dies from the
  // injected fault, the retaken compute (index 1) succeeds.
  uint64_t Seed = 0;
  for (uint64_t S = 1; S < 100000 && !Seed; ++S) {
    if (!FaultInjector::decides(S, FaultSite::Transfer, 0, 0.5))
      continue;
    bool QuietTail = true;
    for (uint64_t I = 1; I <= 16 && QuietTail; ++I)
      QuietTail = !FaultInjector::decides(S, FaultSite::Transfer, I, 0.5);
    if (QuietTail)
      Seed = S;
  }
  ASSERT_NE(Seed, 0u);
  FaultPlan Plan;
  ASSERT_TRUE(
      FaultPlan::parse(std::to_string(Seed) + ":0.5:transfer", &Plan));
  FaultInjector Inj(Plan);

  ShardedTrailCache<int> Cache;
  ThreadPool Pool(8);
  std::atomic<int> Computes{0}, Died{0};
  Pool.parallelFor(16, [&](size_t) {
    FaultScope Scope(&Inj);
    try {
      int V = Cache.getOrCompute("victim", [&] {
        Computes.fetch_add(1, std::memory_order_relaxed);
        // Dwell so the other workers block on the in-flight entry and
        // exercise the real abandoned-waiter wakeup, not a fresh insert.
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
        maybeInjectFault(FaultSite::Transfer);
        return std::pair<int, bool>(42, true);
      });
      EXPECT_EQ(V, 42);
    } catch (const InjectedFault &) {
      Died.fetch_add(1, std::memory_order_relaxed);
    }
  });
  // Exactly the first owner died (fault index 0); one waiter retook the
  // key, recomputed cleanly, and published for everyone else.
  EXPECT_EQ(Died.load(), 1);
  EXPECT_EQ(Computes.load(), 2);
  EXPECT_EQ(Cache.stats().Entries, 1u);
  EXPECT_EQ(Inj.stats().Injected, 1u);
  // The retaken result is a plain hit now — no recompute.
  int V = Cache.getOrCompute(
      "victim", [&]() -> std::pair<int, bool> { ADD_FAILURE(); return {0, true}; });
  EXPECT_EQ(V, 42);
  EXPECT_EQ(Computes.load(), 2);
}

TEST(TrailCacheTest, ClearDropsReadyEntriesWithoutCountingEvictions) {
  ShardedTrailCache<int> Cache;
  for (int I = 0; I < 10; ++I)
    Cache.getOrCompute("k" + std::to_string(I),
                       [&] { return std::pair<int, bool>(I, true); });
  EXPECT_EQ(Cache.stats().Entries, 10u);
  Cache.clear();
  TrailCacheStats St = Cache.stats();
  EXPECT_EQ(St.Entries, 0u);
  EXPECT_EQ(St.Evictions, 0u);
  // Cleared keys recompute.
  int V = Cache.getOrCompute("k3",
                             [&] { return std::pair<int, bool>(99, true); });
  EXPECT_EQ(V, 99);
}

//===----------------------------------------------------------------------===//
// End to end: BoundAnalysis cache wiring through the driver
//===----------------------------------------------------------------------===//

const BenchmarkProgram &benchmarkNamed(const std::string &Name) {
  for (const BenchmarkProgram &B : allBenchmarks())
    if (B.Name == Name)
      return B;
  ADD_FAILURE() << "no benchmark named " << Name;
  static BenchmarkProgram Empty;
  return Empty;
}

TEST(TrailCacheTest, BudgetTrippedResultsAreNeverCached) {
  // A joins budget of 1 trips inside the very first trail analysis, so
  // that analysis ends degraded and must not publish. The shared cache
  // stays empty, and a later budget-free run against the same cache gets
  // the correct verdict — proof the degraded round left no poison behind.
  const BenchmarkProgram &B = benchmarkNamed("k96_safe");
  auto Shared = std::make_shared<TrailBoundCache>();

  BudgetLimits Tight;
  Tight.MaxJoins = 1;
  BlazerResult Tripped = runBenchmark(B, Tight, /*Jobs=*/1, {}, Shared);
  ASSERT_TRUE(Tripped.Degradation.tripped());
  EXPECT_NE(Tripped.Verdict, VerdictKind::Safe);
  EXPECT_EQ(Shared->stats().Entries, 0u)
      << "degraded trail result leaked into the cache";

  BlazerResult Clean = runBenchmark(B, {}, /*Jobs=*/1, {}, Shared);
  EXPECT_FALSE(Clean.Degradation.tripped());
  EXPECT_EQ(Clean.Verdict, B.Expected);
  EXPECT_GT(Shared->stats().Entries, 0u);

  // And the post-poison-attempt run matches a fresh-cache run exactly.
  BlazerResult Fresh = runBenchmark(B, {}, /*Jobs=*/1);
  CfgFunction F = B.compile();
  EXPECT_EQ(Clean.treeString(F), Fresh.treeString(F));
}

TEST(TrailCacheTest, SharedCacheAcrossRunsAndJobCountsStaysCorrect) {
  // One cache shared across repeated runs of the same benchmark at mixed
  // job counts: later runs are warm (hits dominate) yet verdict and tree
  // never drift from the cold run.
  const BenchmarkProgram &B = benchmarkNamed("k96_unsafe");
  CfgFunction F = B.compile();
  auto Shared = std::make_shared<TrailBoundCache>();

  BlazerResult Cold = runBenchmark(B, {}, 1, {}, Shared);
  EXPECT_EQ(Cold.Verdict, B.Expected);
  uint64_t ColdMisses = Cold.Telemetry.Cache.Misses;
  EXPECT_GT(ColdMisses, 0u);

  for (int Jobs : {1, 2, 8}) {
    BlazerResult Warm = runBenchmark(B, {}, Jobs, {}, Shared);
    EXPECT_EQ(Warm.Verdict, Cold.Verdict);
    EXPECT_EQ(Warm.treeString(F), Cold.treeString(F));
  }
  // The warm runs found everything ready: miss count never moved.
  EXPECT_EQ(Shared->stats().Misses, ColdMisses);
  EXPECT_GT(Shared->stats().Hits, 0u);
}

TEST(TrailCacheTest, CostModelsNeverShareCacheEntries) {
  // The cache key carries a salt of everything a bound depends on besides
  // the trail language — including the cost model. Running unit and then
  // weighted against the same shared cache must produce zero cross-model
  // hits (the weighted run's misses all recompute) and no verdict or tree
  // drift versus fresh-cache runs of each model.
  const BenchmarkProgram &B = benchmarkNamed("k96_safe");
  CfgFunction F = B.compile();
  auto Shared = std::make_shared<TrailBoundCache>();

  EngineConfig Unit;
  ASSERT_TRUE(Unit.set("cost-model", "unit"));
  EngineConfig Weighted;
  ASSERT_TRUE(Weighted.set("cost-model", "weighted:arith=3,call=2"));

  BlazerResult UnitRun = runBenchmark(B, {}, 1, Unit, Shared);
  uint64_t UnitMisses = Shared->stats().Misses;
  EXPECT_GT(UnitMisses, 0u);
  EXPECT_EQ(Shared->stats().Hits, 0u);

  // The weighted run sees a warm cache full of unit entries; every one of
  // its lookups must miss — a hit would be a cross-model key collision.
  BlazerResult WeightedRun = runBenchmark(B, {}, 1, Weighted, Shared);
  EXPECT_EQ(Shared->stats().Hits, 0u)
      << "weighted run hit a unit-model cache entry";
  EXPECT_GT(Shared->stats().Misses, UnitMisses);

  // No drift: each model's shared-cache run matches its fresh-cache run.
  BlazerResult UnitFresh = runBenchmark(B, {}, 1, Unit);
  BlazerResult WeightedFresh = runBenchmark(B, {}, 1, Weighted);
  EXPECT_EQ(UnitRun.Verdict, UnitFresh.Verdict);
  EXPECT_EQ(UnitRun.treeString(F), UnitFresh.treeString(F));
  EXPECT_EQ(WeightedRun.Verdict, WeightedFresh.Verdict);
  EXPECT_EQ(WeightedRun.treeString(F), WeightedFresh.treeString(F));

  // Re-running each model against the now doubly-warm cache is all hits.
  uint64_t MissesBefore = Shared->stats().Misses;
  runBenchmark(B, {}, 1, Unit, Shared);
  runBenchmark(B, {}, 1, Weighted, Shared);
  EXPECT_EQ(Shared->stats().Misses, MissesBefore);
  EXPECT_GT(Shared->stats().Hits, 0u);
}

TEST(TrailCacheTest, SharedCacheHammeredByConcurrentAnalyses) {
  // The hardest contention profile the driver can produce: many threads
  // running the same function against one shared cache simultaneously, so
  // identical keys are computed/waited/hit in every interleaving. Under
  // the tsan preset this doubles as the data-race check for the cache.
  const BenchmarkProgram &B = benchmarkNamed("login_unsafe");
  CfgFunction F = B.compile();
  auto Shared = std::make_shared<TrailBoundCache>();
  const std::string Expected =
      runBenchmark(B, {}, 1, {}, Shared).treeString(F);

  constexpr int Threads = 8;
  std::vector<std::string> Trees(Threads);
  std::vector<std::thread> Ts;
  for (int T = 0; T < Threads; ++T)
    Ts.emplace_back([&, T] {
      Trees[T] = runBenchmark(B, {}, /*Jobs=*/2, {}, Shared).treeString(F);
    });
  for (std::thread &T : Ts)
    T.join();
  for (int T = 0; T < Threads; ++T)
    EXPECT_EQ(Trees[T], Expected) << "thread " << T;
}

} // namespace
