//===- TrailExprTest.cpp - Tests for regular trail expressions -------------===//
//
// Part of the Blazer reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "automata/TrailExpr.h"

#include <gtest/gtest.h>

using namespace blazer;

namespace {

using TE = TrailExpr;

TEST(TrailExpr, SmartConstructorsSimplify) {
  TE::Ptr E = TE::empty();
  TE::Ptr Eps = TE::epsilon();
  TE::Ptr S = TE::symbol(0);
  // Annihilator and identity laws.
  EXPECT_EQ(TE::concat(E, S)->kind(), TE::Kind::Empty);
  EXPECT_EQ(TE::concat(S, E)->kind(), TE::Kind::Empty);
  EXPECT_EQ(TE::concat(Eps, S), S);
  EXPECT_EQ(TE::concat(S, Eps), S);
  EXPECT_EQ(TE::unite(E, S), S);
  EXPECT_EQ(TE::unite(S, E), S);
  EXPECT_EQ(TE::unite(S, S), S);
  EXPECT_EQ(TE::star(E)->kind(), TE::Kind::Epsilon);
  EXPECT_EQ(TE::star(Eps)->kind(), TE::Kind::Epsilon);
  // (r*)* == r*.
  TE::Ptr Star = TE::star(S);
  EXPECT_EQ(TE::star(Star), Star);
}

TEST(TrailExpr, TaintMarkRendering) {
  TaintMark L;
  L.Low = true;
  TaintMark H;
  H.High = true;
  TaintMark Both;
  Both.Low = Both.High = true;
  EXPECT_EQ(L.str(), "l");
  EXPECT_EQ(H.str(), "h");
  EXPECT_EQ(Both.str(), "l,h");
  EXPECT_EQ(TaintMark().str(), "");
  EXPECT_TRUE(L.any());
  EXPECT_FALSE(TaintMark().any());
}

TEST(TrailExpr, StrShowsAnnotations) {
  TaintMark L;
  L.Low = true;
  TE::Ptr E = TE::unite(TE::symbol(0), TE::symbol(1), L);
  EXPECT_EQ(E->str(), "e0 |_l e1");
  TaintMark H;
  H.High = true;
  TE::Ptr St = TE::star(TE::symbol(2), H);
  EXPECT_EQ(St->str(), "e2*_h");
}

TEST(TrailExpr, StrPrecedence) {
  // (a|b) . c* needs parens around the union, none around the star.
  TE::Ptr E = TE::concat(TE::unite(TE::symbol(0), TE::symbol(1)),
                         TE::star(TE::symbol(2)));
  EXPECT_EQ(E->str(), "(e0 | e1) . e2*");
}

TEST(TrailExpr, ToDfaMatchesSemantics) {
  // (0 . 1*) | 2
  TE::Ptr E = TE::unite(
      TE::concat(TE::symbol(0), TE::star(TE::symbol(1))), TE::symbol(2));
  Dfa D = E->toDfa(3);
  EXPECT_TRUE(D.accepts({0}));
  EXPECT_TRUE(D.accepts({0, 1, 1}));
  EXPECT_TRUE(D.accepts({2}));
  EXPECT_FALSE(D.accepts({}));
  EXPECT_FALSE(D.accepts({1}));
  EXPECT_FALSE(D.accepts({2, 2}));
  EXPECT_FALSE(D.accepts({0, 2}));
}

TEST(TrailExpr, EmptyAndEpsilonAutomata) {
  EXPECT_TRUE(TE::empty()->toDfa(2).isEmpty());
  Dfa Eps = TE::epsilon()->toDfa(2);
  EXPECT_TRUE(Eps.accepts({}));
  EXPECT_FALSE(Eps.accepts({0}));
}

TEST(TrailExpr, SizeCountsNodes) {
  TE::Ptr E = TE::concat(TE::symbol(0), TE::unite(TE::symbol(1),
                                                  TE::symbol(2)));
  EXPECT_EQ(E->size(), 5u);
}

//===----------------------------------------------------------------------===//
// DFA -> regex extraction (state elimination) round trips
//===----------------------------------------------------------------------===//

class RegexRoundTrip : public ::testing::TestWithParam<int> {
protected:
  static constexpr int NumSymbols = 3;

  static Dfa make(int Seed) {
    Dfa D = Dfa::allWords(NumSymbols);
    uint32_t S = static_cast<uint32_t>(Seed) * 2654435761u + 99u;
    auto Next = [&S] {
      S ^= S << 13;
      S ^= S >> 17;
      S ^= S << 5;
      return S;
    };
    int Ops = 1 + Next() % 2;
    for (int I = 0; I < Ops; ++I) {
      int Sym = Next() % NumSymbols;
      Dfa Atom = Next() % 2 ? Dfa::containsSymbol(NumSymbols, Sym)
                            : Dfa::avoidsSymbol(NumSymbols, Sym);
      D = Next() % 2 ? D.intersect(Atom) : D.unite(Atom);
    }
    return D.minimize();
  }
};

TEST_P(RegexRoundTrip, DfaToRegexToDfaPreservesLanguage) {
  Dfa D = make(GetParam());
  TE::Ptr E = dfaToTrailExpr(D, /*SizeLimit=*/100000);
  ASSERT_NE(E, nullptr);
  Dfa Back = E->toDfa(NumSymbols);
  EXPECT_TRUE(Back.equivalent(D)) << "regex: " << E->str();
}

INSTANTIATE_TEST_SUITE_P(Seeds, RegexRoundTrip, ::testing::Range(0, 15));

TEST(RegexExtraction, EmptyLanguageYieldsEmptyExpr) {
  TE::Ptr E = dfaToTrailExpr(Dfa::emptyLanguage(2));
  ASSERT_NE(E, nullptr);
  EXPECT_EQ(E->kind(), TE::Kind::Empty);
}

TEST(RegexExtraction, SizeLimitReturnsNull) {
  // A product of several constraints blows past a tiny limit.
  Dfa D = Dfa::containsSymbol(3, 0)
              .intersect(Dfa::containsSymbol(3, 1))
              .intersect(Dfa::containsSymbol(3, 2));
  EXPECT_EQ(dfaToTrailExpr(D, /*SizeLimit=*/3), nullptr);
}

TEST(RegexExtraction, CfgAutomatonOfLoopRoundTrips) {
  auto F = compileSingleFunction(
      "fn f(public n: int) { var i: int = 0; while (i < n) { i = i + 1; } }",
      BuiltinRegistry::standard());
  ASSERT_TRUE(static_cast<bool>(F));
  EdgeAlphabet A = EdgeAlphabet::forFunction(*F);
  Dfa D = Dfa::fromCfg(*F, A);
  TE::Ptr E = dfaToTrailExpr(D, 100000);
  ASSERT_NE(E, nullptr);
  EXPECT_TRUE(E->toDfa(static_cast<int>(A.size())).equivalent(D));
  // The rendered trail mentions CFG edges in From->To form.
  EXPECT_NE(E->str(&A).find("->"), std::string::npos);
}

} // namespace
