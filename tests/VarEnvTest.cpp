//===- VarEnvTest.cpp - Tests for transfer functions and assumptions --------===//
//
// Part of the Blazer reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "absint/VarEnv.h"
#include "dataflow/Taint.h"
#include "lang/Parser.h"

#include <gtest/gtest.h>

using namespace blazer;

namespace {

CfgFunction compile(const std::string &Src) {
  auto F = compileSingleFunction(Src, BuiltinRegistry::standard());
  EXPECT_TRUE(static_cast<bool>(F)) << (F ? "" : F.diag().str());
  return F.take();
}

/// Parses \p Text as the condition of a one-line function so tests can
/// build arbitrary typed expressions.
struct CondHarness {
  CfgFunction F;
  const Expr *Cond = nullptr;

  explicit CondHarness(const std::string &CondText)
      : F(compile("fn f(public a: int, public b: int, public flag: bool, "
                  "public arr: int[]) { if (" +
                  CondText + ") { skip; } }")) {
    for (const BasicBlock &B : F.Blocks)
      if (B.Term == BasicBlock::TermKind::Branch)
        Cond = B.Cond;
    EXPECT_NE(Cond, nullptr);
  }
};

TEST(VarEnv, RegistersLocalsParamsSeedsAndLengths) {
  CfgFunction F = compile(
      "fn f(public a: int, secret arr: int[]) { var x: int = 0; }");
  VarEnv Env(F);
  EXPECT_GT(Env.indexOf("a"), 0);
  EXPECT_GT(Env.indexOf("a#in"), 0);
  EXPECT_GT(Env.indexOf("x"), 0);
  EXPECT_GT(Env.indexOf(lengthSymbol("arr")), 0);
  EXPECT_EQ(Env.indexOf("nope"), -1);
  EXPECT_TRUE(Env.isInputSymbol(Env.indexOf("a#in")));
  EXPECT_TRUE(Env.isInputSymbol(Env.indexOf("arr.len")));
  EXPECT_FALSE(Env.isInputSymbol(Env.indexOf("x")));
  EXPECT_EQ(Env.displaySymbol(Env.indexOf("a#in")), "a");
  EXPECT_EQ(Env.displaySymbol(Env.indexOf("arr.len")), "arr.len");
}

TEST(VarEnv, InitialStatePinsParamsToSeeds) {
  CfgFunction F = compile("fn f(public a: int, public arr: int[]) { }");
  VarEnv Env(F);
  Dbm D = Env.initialState();
  int A = Env.indexOf("a");
  int In = Env.indexOf("a#in");
  EXPECT_EQ(*D.exactDifference(A, In), 0);
  // Lengths are non-negative.
  EXPECT_EQ(*D.lowerOf(Env.indexOf("arr.len")), 0);
}

TEST(VarEnv, InitialStateBoundsBooleans) {
  CfgFunction F = compile("fn f(secret flag: bool) { }");
  VarEnv Env(F);
  Dbm D = Env.initialState();
  int Fl = Env.indexOf("flag");
  EXPECT_EQ(*D.lowerOf(Fl), 0);
  EXPECT_EQ(*D.upperOfOpt(Fl), 1);
}

//===----------------------------------------------------------------------===//
// Linear-form parsing
//===----------------------------------------------------------------------===//

TEST(VarEnv, ParsesLinearShapes) {
  CondHarness H("a + 2 * b - 3 < arr.length");
  VarEnv Env(H.F);
  const auto *Cmp = cast<BinaryExpr>(H.Cond);
  auto L = Env.parseLinear(Cmp->Lhs.get());
  ASSERT_TRUE(L.has_value());
  EXPECT_EQ(L->Coeffs.at(Env.indexOf("a")), 1);
  EXPECT_EQ(L->Coeffs.at(Env.indexOf("b")), 2);
  EXPECT_EQ(L->Const, -3);
  auto R = Env.parseLinear(Cmp->Rhs.get());
  ASSERT_TRUE(R.has_value());
  EXPECT_EQ(R->Coeffs.at(Env.indexOf("arr.len")), 1);
}

TEST(VarEnv, ParseLinearRejectsNonlinear) {
  CondHarness H("a * b > 0");
  VarEnv Env(H.F);
  EXPECT_FALSE(
      Env.parseLinear(cast<BinaryExpr>(H.Cond)->Lhs.get()).has_value());
}

TEST(VarEnv, ParseLinearHandlesNegation) {
  CondHarness H("-(a - b) > 0");
  VarEnv Env(H.F);
  auto L = Env.parseLinear(cast<BinaryExpr>(H.Cond)->Lhs.get());
  ASSERT_TRUE(L.has_value());
  EXPECT_EQ(L->Coeffs.at(Env.indexOf("a")), -1);
  EXPECT_EQ(L->Coeffs.at(Env.indexOf("b")), 1);
}

TEST(VarEnv, ParseLinearCancelsTerms) {
  CondHarness H("a - a + 1 > 0");
  VarEnv Env(H.F);
  auto L = Env.parseLinear(cast<BinaryExpr>(H.Cond)->Lhs.get());
  ASSERT_TRUE(L.has_value());
  EXPECT_TRUE(L->Coeffs.empty());
  EXPECT_EQ(L->Const, 1);
}

//===----------------------------------------------------------------------===//
// Assignment transfer
//===----------------------------------------------------------------------===//

/// Runs the entry block's instructions on the initial state.
Dbm runEntry(const CfgFunction &F, const VarEnv &Env) {
  Dbm D = Env.initialState();
  for (const Instr &I : F.block(F.Entry).Instrs)
    Env.transferInstr(D, I);
  return D;
}

TEST(Transfer, ConstantAssignment) {
  CfgFunction F = compile("fn f() { var x: int = 42; }");
  VarEnv Env(F);
  Dbm D = runEntry(F, Env);
  EXPECT_EQ(*D.upperOfOpt(Env.indexOf("x")), 42);
  EXPECT_EQ(*D.lowerOf(Env.indexOf("x")), 42);
}

TEST(Transfer, CopyPlusConstantKeepsRelation) {
  CfgFunction F = compile(
      "fn f(public a: int) { var x: int = a + 3; }");
  VarEnv Env(F);
  Dbm D = runEntry(F, Env);
  EXPECT_EQ(*D.exactDifference(Env.indexOf("x"), Env.indexOf("a")), 3);
  // Transitively x relates to the input seed.
  EXPECT_EQ(*D.exactDifference(Env.indexOf("x"), Env.indexOf("a#in")), 3);
}

TEST(Transfer, GeneralLinearFallsBackToIntervals) {
  CfgFunction F = compile(R"(
    fn f() {
      var a: int = 2;
      var b: int = 5;
      var x: int = a + b;
    }
  )");
  VarEnv Env(F);
  Dbm D = runEntry(F, Env);
  EXPECT_EQ(*D.lowerOf(Env.indexOf("x")), 7);
  EXPECT_EQ(*D.upperOfOpt(Env.indexOf("x")), 7);
}

TEST(Transfer, UnmodeledRhsForgets) {
  CfgFunction F = compile(R"(
    fn f(public arr: int[]) {
      var x: int = 1;
      x = arr[0];
    }
  )");
  VarEnv Env(F);
  Dbm D = runEntry(F, Env);
  EXPECT_FALSE(D.upperOfOpt(Env.indexOf("x")).has_value());
  EXPECT_FALSE(D.lowerOf(Env.indexOf("x")).has_value());
}

TEST(Transfer, BooleanComparisonAssignGivesUnitRange) {
  CfgFunction F = compile(
      "fn f(public a: int) { var b: bool = a < 10; }");
  VarEnv Env(F);
  Dbm D = runEntry(F, Env);
  EXPECT_EQ(*D.lowerOf(Env.indexOf("b")), 0);
  EXPECT_EQ(*D.upperOfOpt(Env.indexOf("b")), 1);
}

TEST(Transfer, ArrayLengthAssignRelatesToLengthVar) {
  CfgFunction F = compile(
      "fn f(public arr: int[]) { var n: int = arr.length; }");
  VarEnv Env(F);
  Dbm D = runEntry(F, Env);
  EXPECT_EQ(*D.exactDifference(Env.indexOf("n"), Env.indexOf("arr.len")), 0);
}

//===----------------------------------------------------------------------===//
// Branch assumptions
//===----------------------------------------------------------------------===//

TEST(Assume, ComparisonRefinesBothSides) {
  CondHarness H("a < b");
  VarEnv Env(H.F);
  Dbm True = Env.initialState();
  Env.assumeCond(True, H.Cond, true);
  EXPECT_LE(True.bound(Env.indexOf("a"), Env.indexOf("b")), -1);
  Dbm False = Env.initialState();
  Env.assumeCond(False, H.Cond, false);
  EXPECT_LE(False.bound(Env.indexOf("b"), Env.indexOf("a")), 0);
}

TEST(Assume, EqualityPinsDifference) {
  CondHarness H("a == b + 2");
  VarEnv Env(H.F);
  Dbm D = Env.initialState();
  Env.assumeCond(D, H.Cond, true);
  EXPECT_EQ(*D.exactDifference(Env.indexOf("a"), Env.indexOf("b")), 2);
}

TEST(Assume, ConstantComparisonBecomesInterval) {
  CondHarness H("a >= 10");
  VarEnv Env(H.F);
  Dbm D = Env.initialState();
  Env.assumeCond(D, H.Cond, true);
  EXPECT_EQ(*D.lowerOf(Env.indexOf("a")), 10);
}

TEST(Assume, BoolVarPositiveAndNegative) {
  CondHarness H("flag");
  VarEnv Env(H.F);
  Dbm T = Env.initialState();
  Env.assumeCond(T, H.Cond, true);
  EXPECT_EQ(*T.lowerOf(Env.indexOf("flag")), 1);
  Dbm Fa = Env.initialState();
  Env.assumeCond(Fa, H.Cond, false);
  EXPECT_EQ(*Fa.upperOfOpt(Env.indexOf("flag")), 0);
}

TEST(Assume, NotFlipsPolarity) {
  CondHarness H("!(a < 5)");
  VarEnv Env(H.F);
  Dbm D = Env.initialState();
  Env.assumeCond(D, H.Cond, true);
  EXPECT_EQ(*D.lowerOf(Env.indexOf("a")), 5);
}

TEST(Assume, ConjunctionAppliesBoth) {
  CondHarness H("a >= 1 && a <= 3");
  VarEnv Env(H.F);
  Dbm D = Env.initialState();
  Env.assumeCond(D, H.Cond, true);
  EXPECT_EQ(*D.lowerOf(Env.indexOf("a")), 1);
  EXPECT_EQ(*D.upperOfOpt(Env.indexOf("a")), 3);
}

TEST(Assume, DisjunctionJoins) {
  CondHarness H("a <= 1 || a <= 3");
  VarEnv Env(H.F);
  Dbm D = Env.initialState();
  Env.assumeCond(D, H.Cond, true);
  // Join of the two refinements: only a <= 3 survives.
  EXPECT_EQ(*D.upperOfOpt(Env.indexOf("a")), 3);
}

TEST(Assume, NegatedConjunctionIsDeMorganJoin) {
  CondHarness H("a >= 1 && a <= 3");
  VarEnv Env(H.F);
  Dbm D = Env.initialState();
  D.addConstraint(0, Env.indexOf("a"), 0); // a >= 0 to make the join finite.
  Env.assumeCond(D, H.Cond, false);
  // !(1<=a<=3) joined under a>=0: lower bound stays 0.
  EXPECT_EQ(*D.lowerOf(Env.indexOf("a")), 0);
}

TEST(Assume, LiteralFalseIsBottom) {
  CondHarness H("false");
  VarEnv Env(H.F);
  Dbm D = Env.initialState();
  Env.assumeCond(D, H.Cond, true);
  EXPECT_TRUE(D.isBottom());
  Dbm D2 = Env.initialState();
  Env.assumeCond(D2, H.Cond, false);
  EXPECT_FALSE(D2.isBottom());
}

TEST(Assume, ContradictingConstantComparison) {
  CondHarness H("1 > 2");
  VarEnv Env(H.F);
  Dbm D = Env.initialState();
  Env.assumeCond(D, H.Cond, true);
  EXPECT_TRUE(D.isBottom());
}

TEST(Assume, DisequalityIsIgnoredSoundly) {
  CondHarness H("a != b");
  VarEnv Env(H.F);
  Dbm D = Env.initialState();
  Dbm Before = D;
  Env.assumeCond(D, H.Cond, true);
  EXPECT_TRUE(Before.leq(D) && D.leq(Before)); // Unchanged.
}

TEST(Assume, NonlinearConditionIsIgnoredSoundly) {
  CondHarness H("a * b > 0");
  VarEnv Env(H.F);
  Dbm D = Env.initialState();
  Dbm Before = D;
  Env.assumeCond(D, H.Cond, true);
  EXPECT_TRUE(Before.leq(D) && D.leq(Before));
}

} // namespace
