#!/usr/bin/env python3
"""bench_regress.py - benchmark regression gate for the Table-1 sweep.

Runs the table1_blazer driver once (BLAZER_TABLE1_RUNS=1) with JSON
emission, then compares the fresh sweep against the committed baseline in
BENCH_fixpoint.json:

  1. Verdicts are exact: every benchmark row must report match=true and
     the sweep must print 24/24 agreement. Any verdict drift is a hard
     failure regardless of timing.
  2. Suite wall clock is within --tolerance (default 30%) of the
     baseline's pooled jobs=1 mode, with an absolute floor of
     --floor-ms (default 250 ms) so sub-millisecond noise on tiny
     benchmarks can't trip the gate.
  3. The pooled context telemetry is live: suite-total ctx hits must be
     positive (the cascade re-runs same-shape fixpoints, so a healthy
     pool always scores hits). A dead counter means the telemetry
     plumbing regressed even if timing looks fine.

Exit status is 0 when all gates pass, 1 on any drift, 2 on harness
errors (missing driver, malformed JSON). Stdlib only; no third-party
imports.

Usage:
  tools/bench_regress.py --driver build-release/bench/table1_blazer \\
      [--baseline BENCH_fixpoint.json] [--tolerance 0.30] \\
      [--floor-ms 250] [--mode pooled] [--keep-json PATH]
"""

import argparse
import json
import os
import subprocess
import sys
import tempfile


def fail(msg):
    print("bench_regress: FAIL: %s" % msg)
    return 1


def load_baseline(path, mode):
    with open(path, "r", encoding="utf-8") as fh:
        base = json.load(fh)
    for entry in base.get("modes", []):
        if entry.get("fixpoint_ctx", entry.get("arc_cache")) == mode and \
                entry.get("jobs") == 1:
            return base, entry
    return base, None


def run_sweep(driver, json_path, mode):
    env = dict(os.environ)
    env["BLAZER_TABLE1_RUNS"] = "1"
    env["BLAZER_TABLE1_JSON"] = json_path
    env["BLAZER_TABLE1_FIXPOINT_CTX"] = mode
    env.setdefault("BLAZER_TABLE1_JOBS", "1")
    proc = subprocess.run([driver], env=env, stdout=subprocess.PIPE,
                          stderr=subprocess.STDOUT, text=True)
    return proc.returncode, proc.stdout


def main():
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--driver", default="build-release/bench/table1_blazer",
                    help="path to the table1_blazer binary")
    ap.add_argument("--baseline", default="BENCH_fixpoint.json",
                    help="committed baseline JSON")
    ap.add_argument("--tolerance", type=float, default=0.30,
                    help="relative wall-clock tolerance (0.30 = +/-30%%)")
    ap.add_argument("--floor-ms", type=float, default=250.0,
                    help="absolute slack added to the tolerance band")
    ap.add_argument("--mode", default="pooled", choices=["pooled", "fresh"],
                    help="fixpoint-ctx mode to sweep and compare")
    ap.add_argument("--keep-json", default=None,
                    help="also write the fresh sweep JSON to this path")
    args = ap.parse_args()

    if not os.path.exists(args.driver):
        print("bench_regress: driver not found: %s" % args.driver)
        print("  (build it with: cmake --preset release && "
              "cmake --build --preset release)")
        return 2

    try:
        base, base_mode = load_baseline(args.baseline, args.mode)
    except (OSError, ValueError) as err:
        print("bench_regress: cannot read baseline %s: %s"
              % (args.baseline, err))
        return 2

    with tempfile.TemporaryDirectory(prefix="bench_regress.") as tmp:
        json_path = os.path.join(tmp, "sweep.json")
        rc, out = run_sweep(args.driver, json_path, args.mode)
        sys.stdout.write(out)
        if rc != 0:
            return fail("driver exited with status %d" % rc)
        try:
            with open(json_path, "r", encoding="utf-8") as fh:
                sweep = json.load(fh)
        except (OSError, ValueError) as err:
            print("bench_regress: sweep JSON unreadable: %s" % err)
            return 2
        if args.keep_json:
            with open(args.keep_json, "w", encoding="utf-8") as fh:
                json.dump(sweep, fh, indent=2)

    # Gate 1: verdicts. Contained crashes and timeouts are sandbox
    # outcomes, not verdict drift, but a plain mismatch always fails.
    drifted = []
    rows = sweep.get("benchmarks", [])
    for row in rows:
        if row.get("crashed") or row.get("timed_out"):
            continue
        if not row.get("match", False):
            drifted.append("%s gave %s"
                           % (row.get("name"), row.get("verdict")))
    if drifted:
        return fail("verdict drift: " + "; ".join(drifted))
    agreement = sweep.get("verdict_agreement", "")
    if agreement != "24/24":
        return fail("verdict agreement %r, expected '24/24'" % agreement)

    # Gate 2: wall clock vs the committed baseline mode.
    wall = sum(row.get("median_wall_ms", 0.0) for row in rows)
    if base_mode is None:
        print("bench_regress: note: baseline has no %s jobs=1 mode; "
              "skipping the wall-clock gate" % args.mode)
    else:
        ref = float(base_mode["total_median_wall_ms"])
        band = ref * args.tolerance + args.floor_ms
        print("bench_regress: suite wall %.1f ms vs baseline %.1f ms "
              "(band +/-%.1f ms)" % (wall, ref, band))
        if abs(wall - ref) > band:
            return fail("suite wall clock %.1f ms outside %.1f +/- %.1f ms"
                        % (wall, ref, band))

    # Gate 3: pooled telemetry is alive.
    if args.mode == "pooled":
        hits = sum(row.get("telemetry", {}).get("fixpoint", {})
                   .get("ctx", {}).get("hits", 0) for row in rows)
        if hits <= 0:
            return fail("pooled sweep reported zero context-pool hits")
        print("bench_regress: context pool scored %d hits suite-wide"
              % hits)

    print("bench_regress: PASS (%d benchmarks, %s mode)"
          % (len(rows), args.mode))
    return 0


if __name__ == "__main__":
    sys.exit(main())
