//===- blazer_cli.cpp - The blazer command-line tool -------------------------===//
//
// Part of the Blazer reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Command-line front end: analyze mini-language source files for timing
/// channels.
///
/// \code
///   blazer [options] <file> [function...]
///
///   --observer=degree|concrete   observability model (default degree)
///   --epsilon=N                  degree-model constant slack (default 32)
///   --threshold=N                concrete-model gap threshold (default 25000)
///   --max-input=N                concrete-model default input max (default 4096)
///   --pin=SYM=VAL                pin a public-knowledge symbol, e.g.
///                                --pin=key.len=4096 (repeatable)
///   --capacity=Q                 verify channel capacity Q instead of tcf
///   --no-attack                  safety verification only
///   --selfcomp                   also run the self-composition baseline
///   --dot                        print the CFG in Graphviz format
///   --regex                      print the annotated most-general trail
///   --max-trails=N --max-depth=N refinement budgets
///   --jobs=N                     analysis worker threads (0 = hardware)
///   --timeout=SEC                wall-clock deadline per function (0 = off)
///   --max-states=N               automaton state-creation budget (0 = off)
///   --max-joins=N                DBM join/widening budget (0 = off)
///   --max-trail-nodes=N          trail-tree node budget (0 = off)
///   --domain=cascade|zone|interval-only   abstract-domain mode
///   --fixpoint=wto|fifo          zone-fixpoint scheduler (default wto)
///   --closure=incremental|full   DBM closure policy (default incremental)
///   --cache=on|off               trail-bound memo cache (default on)
///   --fault-plan=S:R[:site,...]  deterministic fault injection (default off)
///   --cost-model=unit|weighted[:op=w,...|:@file]|memaccess[:N]
///                                timing cost model (default unit)
///   --ct / --ct=on|off           strict constant-time verdict mode: the
///                                attack search is replaced by a
///                                CtSafe/CtUnsafe/CtUnknown classification
///                                requiring *equal* per-component bounds
///   --no-cache                   deprecated alias for --cache=off
///   --cache-stats                print the engine-telemetry JSON line
///   --fixpoint-stats             print the engine-telemetry JSON line
/// \endcode
///
/// The engine knobs (--domain, --fixpoint, --closure, --cache,
/// --fault-plan, --cost-model, --ct) are parsed from the EngineConfig
/// registry, so the CLI, the env vars (BLAZER_DOMAIN, ...,
/// BLAZER_COST_MODEL — read first, flags override), and the programmatic
/// options always accept the same spellings. --cache-stats and
/// --fixpoint-stats both print the one shared schema —
/// "engine-telemetry: {...}" — that bench/table1_blazer also emits.
///
/// Exit-code contract (see README "Exit codes"):
///   0  every analyzed function completed with a clean verdict — safe,
///      attack, or a genuine unknown (analysis limits, not resource loss);
///   2  usage, file, parse, or semantic errors;
///   3  some verdict degraded to unknown because a resource budget tripped
///      or an injected fault was unrecoverable (the reason is printed);
///   4  internal error — an unexpected exception escaped, or
///      std::terminate fired (the installed handler prints the current
///      phase label and a telemetry snapshot to stderr before aborting).
///
//===----------------------------------------------------------------------===//

#include "core/Blazer.h"
#include "ir/Cfg.h"
#include "lang/Parser.h"
#include "lang/Sema.h"
#include "selfcomp/SelfComposition.h"
#include "support/FaultInjector.h"

#include <cerrno>
#include <cstdint>
#include <exception>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

using namespace blazer;

namespace {

struct CliOptions {
  std::string ObserverKind = "degree";
  int64_t Epsilon = 32;
  int64_t Threshold = 25000;
  int64_t MaxInput = 4096;
  std::vector<std::pair<std::string, int64_t>> Pins;
  int Capacity = 0; // 0 = tcf mode.
  bool NoAttack = false;
  bool SelfComp = false;
  bool Dot = false;
  bool Regex = false;
  int MaxTrails = 512;
  int MaxDepth = 12;
  int Jobs = 1;
  double TimeoutSeconds = 0;
  int64_t MaxStates = 0;
  int64_t MaxJoins = 0;
  int64_t MaxTrailNodes = 0;
  EngineConfig Engine;
  bool CacheStats = false;
  bool FixpointStatsOut = false;
  std::string File;
  std::vector<std::string> Functions;

  bool telemetryOut() const { return CacheStats || FixpointStatsOut; }
};

/// Exit code 4's last gasp: std::terminate (uncaught exception, broken
/// invariant in a noexcept context, ...) reports where the engine was and
/// what it had done before dying. Everything printed comes from the dying
/// thread's own scopes — phase label, budget usage, fault counters — so no
/// locks are taken and no cross-thread state is touched.
[[noreturn]] void terminateHandler() {
  const char *Phase = PhaseScope::current();
  std::fprintf(stderr, "blazer: fatal: std::terminate in phase '%s'\n",
               Phase && *Phase ? Phase : "<none>");
  if (std::exception_ptr E = std::current_exception()) {
    try {
      std::rethrow_exception(E);
    } catch (const std::exception &Ex) {
      std::fprintf(stderr, "blazer: uncaught exception: %s\n", Ex.what());
    } catch (...) {
      std::fprintf(stderr, "blazer: uncaught non-standard exception\n");
    }
  }
  if (AnalysisBudget *B = BudgetScope::current()) {
    ResourceUsage U = B->usage();
    std::fprintf(stderr,
                 "blazer: telemetry: %llu states, %llu joins, %llu trail "
                 "nodes, %.2fs elapsed\n",
                 static_cast<unsigned long long>(U.States),
                 static_cast<unsigned long long>(U.Joins),
                 static_cast<unsigned long long>(U.TrailNodes), U.Seconds);
  }
  if (FaultInjector *FI = FaultScope::current()) {
    FaultStats S = FI->stats();
    std::fprintf(stderr,
                 "blazer: faults: %llu injected, %llu retries, %llu "
                 "degradations (plan %s)\n",
                 static_cast<unsigned long long>(S.Injected),
                 static_cast<unsigned long long>(S.Retries),
                 static_cast<unsigned long long>(S.Degradations),
                 FI->plan().str().c_str());
  }
  std::abort();
}

void usage(const char *Prog) {
  std::fprintf(
      stderr,
      "usage: %s [options] <file> [function...]\n"
      "  --observer=degree|concrete  observability model (default degree)\n"
      "  --epsilon=N                 degree-model slack (default 32)\n"
      "  --threshold=N               concrete-model threshold (default "
      "25000)\n"
      "  --max-input=N               concrete-model input max (default "
      "4096)\n"
      "  --pin=SYM=VAL               pin a public symbol (repeatable)\n"
      "  --capacity=Q                verify channel capacity Q\n"
      "  --no-attack                 safety verification only\n"
      "  --selfcomp                  also run the self-composition "
      "baseline\n"
      "  --dot                       print the CFG (Graphviz)\n"
      "  --regex                     print the annotated trail expression\n"
      "  --max-trails=N --max-depth=N refinement budgets\n"
      "  --jobs=N                    analysis worker threads (0 = "
      "hardware)\n"
      "  --timeout=SEC               wall-clock deadline per function\n"
      "  --max-states=N              automaton state-creation budget\n"
      "  --max-joins=N               DBM join/widening budget\n"
      "  --max-trail-nodes=N         trail-tree node budget\n",
      Prog);
  // The engine knobs come from the one registry the env vars also use.
  for (const EngineConfig::Knob &K : EngineConfig::knobs()) {
    std::string Flag = "--" + std::string(K.Name) + "=" + K.Values;
    std::fprintf(stderr, "  %-27s %s\n", Flag.c_str(), K.Help);
  }
  std::fprintf(
      stderr,
      "  --no-cache                  deprecated alias for --cache=off\n"
      "  --cache-stats               print the engine-telemetry JSON line\n"
      "  --fixpoint-stats            print the engine-telemetry JSON "
      "line\n");
}

/// Strictly parses \p Text as a decimal integer in [\p Min, \p Max]:
/// rejects empty strings, trailing garbage, and out-of-range values
/// (std::atoll would silently yield 0 for all three).
bool parseIntArg(const char *Flag, const char *Text, int64_t Min, int64_t Max,
                 int64_t &Out) {
  errno = 0;
  char *End = nullptr;
  long long V = std::strtoll(Text, &End, 10);
  if (End == Text || *End != '\0') {
    std::fprintf(stderr, "%s needs an integer, got '%s'\n", Flag, Text);
    return false;
  }
  if (errno == ERANGE || V < Min || V > Max) {
    std::fprintf(stderr, "%s value '%s' out of range [%lld, %lld]\n", Flag,
                 Text, static_cast<long long>(Min),
                 static_cast<long long>(Max));
    return false;
  }
  Out = V;
  return true;
}

/// Strictly parses \p Text as a non-negative decimal number of seconds.
bool parseSecondsArg(const char *Flag, const char *Text, double &Out) {
  errno = 0;
  char *End = nullptr;
  double V = std::strtod(Text, &End);
  if (End == Text || *End != '\0') {
    std::fprintf(stderr, "%s needs a number of seconds, got '%s'\n", Flag,
                 Text);
    return false;
  }
  if (errno == ERANGE || !(V >= 0)) {
    std::fprintf(stderr, "%s needs a non-negative number of seconds, got "
                 "'%s'\n",
                 Flag, Text);
    return false;
  }
  Out = V;
  return true;
}

bool parseArgs(int Argc, char **Argv, CliOptions &Opt) {
  for (int I = 1; I < Argc; ++I) {
    std::string Arg = Argv[I];
    auto Value = [&Arg](const char *Prefix) -> const char * {
      size_t Len = std::strlen(Prefix);
      if (Arg.compare(0, Len, Prefix) == 0)
        return Arg.c_str() + Len;
      return nullptr;
    };
    if (const char *V = Value("--observer=")) {
      Opt.ObserverKind = V;
      if (Opt.ObserverKind != "degree" && Opt.ObserverKind != "concrete") {
        std::fprintf(stderr, "unknown observer '%s'\n", V);
        return false;
      }
    } else if (const char *V = Value("--epsilon=")) {
      if (!parseIntArg("--epsilon", V, 0, INT64_MAX, Opt.Epsilon))
        return false;
    } else if (const char *V = Value("--threshold=")) {
      if (!parseIntArg("--threshold", V, 0, INT64_MAX, Opt.Threshold))
        return false;
    } else if (const char *V = Value("--max-input=")) {
      if (!parseIntArg("--max-input", V, 0, INT64_MAX, Opt.MaxInput))
        return false;
    } else if (const char *V = Value("--pin=")) {
      std::string Pin = V;
      size_t Eq = Pin.rfind('=');
      if (Eq == std::string::npos || Eq == 0) {
        std::fprintf(stderr, "--pin needs SYM=VAL, got '%s'\n", V);
        return false;
      }
      int64_t Val = 0;
      if (!parseIntArg("--pin", Pin.c_str() + Eq + 1, INT64_MIN, INT64_MAX,
                       Val))
        return false;
      Opt.Pins.push_back({Pin.substr(0, Eq), Val});
    } else if (const char *V = Value("--capacity=")) {
      int64_t Q = 0;
      if (!parseIntArg("--capacity", V, 1, INT32_MAX, Q))
        return false;
      Opt.Capacity = static_cast<int>(Q);
    } else if (Arg == "--no-attack") {
      Opt.NoAttack = true;
    } else if (Arg == "--selfcomp") {
      Opt.SelfComp = true;
    } else if (Arg == "--dot") {
      Opt.Dot = true;
    } else if (Arg == "--regex") {
      Opt.Regex = true;
    } else if (const char *V = Value("--max-trails=")) {
      int64_t N = 0;
      if (!parseIntArg("--max-trails", V, 1, INT32_MAX, N))
        return false;
      Opt.MaxTrails = static_cast<int>(N);
    } else if (const char *V = Value("--max-depth=")) {
      int64_t N = 0;
      if (!parseIntArg("--max-depth", V, 0, INT32_MAX, N))
        return false;
      Opt.MaxDepth = static_cast<int>(N);
    } else if (const char *V = Value("--jobs=")) {
      int64_t N = 0;
      if (!parseIntArg("--jobs", V, 0, 1024, N))
        return false;
      Opt.Jobs = static_cast<int>(N);
    } else if (const char *V = Value("--timeout=")) {
      if (!parseSecondsArg("--timeout", V, Opt.TimeoutSeconds))
        return false;
    } else if (const char *V = Value("--max-states=")) {
      if (!parseIntArg("--max-states", V, 0, INT64_MAX, Opt.MaxStates))
        return false;
    } else if (const char *V = Value("--max-joins=")) {
      if (!parseIntArg("--max-joins", V, 0, INT64_MAX, Opt.MaxJoins))
        return false;
    } else if (const char *V = Value("--max-trail-nodes=")) {
      if (!parseIntArg("--max-trail-nodes", V, 0, INT64_MAX,
                       Opt.MaxTrailNodes))
        return false;
    } else if (Arg == "--ct") {
      // Sugar for --ct=on (the registry spelling, also reachable as
      // BLAZER_CT=on).
      Opt.Engine.set("ct", "on");
    } else if (Arg == "--no-cache") {
      warnDeprecatedAlias("--no-cache", "--cache=off");
      Opt.Engine.set("cache", "off");
    } else if (Arg == "--cache-stats") {
      Opt.CacheStats = true;
    } else if (Arg == "--fixpoint-stats") {
      Opt.FixpointStatsOut = true;
    } else if (const char *Knob = [&]() -> const char * {
                 // Engine knobs (--domain=, --fixpoint=, --closure=,
                 // --cache=) are parsed straight from the registry.
                 for (const EngineConfig::Knob &K : EngineConfig::knobs())
                   if (Value(("--" + std::string(K.Name) + "=").c_str()))
                     return K.Name;
                 return nullptr;
               }()) {
      const char *V = Value(("--" + std::string(Knob) + "=").c_str());
      std::string Err;
      if (!Opt.Engine.set(Knob, V, &Err)) {
        std::fprintf(stderr, "%s\n", Err.c_str());
        return false;
      }
    } else if (Arg.rfind("--", 0) == 0) {
      std::fprintf(stderr, "unknown option '%s'\n", Arg.c_str());
      return false;
    } else if (Opt.File.empty()) {
      Opt.File = Arg;
    } else {
      Opt.Functions.push_back(Arg);
    }
  }
  if (Opt.File.empty()) {
    usage(Argv[0]);
    return false;
  }
  return true;
}

BlazerOptions toBlazerOptions(const CliOptions &Cli) {
  BlazerOptions Opt;
  if (Cli.ObserverKind == "degree")
    Opt.Observer = ObserverModel::polynomialDegree(Cli.Epsilon);
  else
    Opt.Observer = ObserverModel::concreteInstructions(Cli.Threshold,
                                                       Cli.MaxInput);
  for (const auto &[Sym, Val] : Cli.Pins)
    Opt.Observer.pinSymbol(Sym, Val);
  Opt.MaxTrails = Cli.MaxTrails;
  Opt.MaxDepth = Cli.MaxDepth;
  Opt.Jobs = Cli.Jobs;
  Opt.SearchAttack = !Cli.NoAttack;
  Opt.Budget.TimeoutSeconds = Cli.TimeoutSeconds;
  Opt.Budget.MaxStates = static_cast<uint64_t>(Cli.MaxStates);
  Opt.Budget.MaxJoins = static_cast<uint64_t>(Cli.MaxJoins);
  Opt.Budget.MaxTrailNodes = static_cast<uint64_t>(Cli.MaxTrailNodes);
  Opt.Engine = Cli.Engine;
  return Opt;
}

/// The stats lines behind --cache-stats/--fixpoint-stats: the engine
/// configuration the counters were measured under, then the one
/// engine-telemetry JSON schema every surface shares. "trail-cache:
/// disabled" still precedes them under --cache=off so scripts can tell
/// "no cache" from "a cache that saw no traffic".
void printTelemetry(const CliOptions &Cli, const EngineTelemetry &T) {
  if (!Cli.telemetryOut())
    return;
  if (Cli.CacheStats && !Cli.Engine.TrailCache)
    std::printf("trail-cache: disabled\n");
  std::printf("engine-config: %s\n", Cli.Engine.str().c_str());
  std::printf("engine-telemetry: %s\n", T.json().c_str());
}

/// One function's exit-code contribution: 0 for any clean verdict (safe,
/// attack, genuine unknown), 3 when the verdict degraded to unknown under a
/// budget trip or unrecovered fault.
int analyzeOne(const CfgFunction &F, const CliOptions &Cli) {
  BlazerOptions Opt = toBlazerOptions(Cli);
  std::printf("==== %s (%zu basic blocks) ====\n", F.Name.c_str(),
              F.blockCount());
  if (Cli.Dot)
    std::printf("%s\n", F.toDot().c_str());

  if (Cli.Capacity > 0) {
    ChannelCapacityResult R = analyzeChannelCapacity(F, Cli.Capacity, Opt);
    std::printf("channel capacity %d: %s (max observed classes per public "
                "input: %d)\n",
                Cli.Capacity,
                R.Bounded ? "BOUNDED"
                          : (R.Known ? "EXCEEDED" : "unknown"),
                R.MaxClasses);
    if (R.Degradation.tripped())
      std::printf("degraded: %s\n", R.Degradation.str().c_str());
    printTelemetry(Cli, R.Telemetry);
    // BOUNDED and EXCEEDED are both clean verdicts; only a degraded
    // "could not establish" is an exit-3 condition.
    return !R.Known && R.Degradation.tripped() ? 3 : 0;
  }

  BlazerResult R = analyzeFunction(F, Opt);
  std::printf("%s", R.treeString(F).c_str());
  printTelemetry(Cli, R.Telemetry);
  for (const AttackSpec &Spec : R.Attacks)
    std::printf("%s\n", Spec.str().c_str());

  if (Cli.Engine.CtMode) {
    if (R.CtPair)
      std::printf("%s\n", R.CtPair->str().c_str());
    std::printf("ct-verdict: %s (%s, cost model %s)\n",
                ctVerdictName(R.Ct), F.Name.c_str(),
                Cli.Engine.Cost.str().c_str());
  }

  if (Cli.Regex) {
    TrailExpr::Ptr Regex =
        renderAnnotatedTrail(F, R.Tree[0].Auto, R.Taint, 1 << 14);
    EdgeAlphabet A = EdgeAlphabet::forFunction(F);
    if (Regex)
      std::printf("trmg = %s\n", Regex->str(&A).c_str());
    else
      std::printf("trmg regex exceeds the display budget\n");
  }

  if (Cli.SelfComp) {
    SelfCompResult S = verifyBySelfComposition(F, Opt.Observer.threshold(),
                                               Opt.Budget, Cli.Engine.Cost);
    std::printf("self-composition baseline: %s\n",
                S.Verified ? "verified"
                           : (S.GapBounded ? "refuted"
                                           : "lost the counter relation"));
    if (S.Degradation.tripped())
      std::printf("self-composition degraded: %s\n",
                  S.Degradation.str().c_str());
  }

  switch (R.Verdict) {
  case VerdictKind::Safe:
  case VerdictKind::Attack:
    return 0;
  case VerdictKind::Unknown:
    return R.Degradation.tripped() ? 3 : 0;
  }
  return 0;
}

} // namespace

int main(int Argc, char **Argv) {
  std::set_terminate(terminateHandler);
  // Machine-output runs keep stderr free of advisory chatter; decide before
  // any parsing below can warn about a deprecated spelling.
  for (int I = 1; I < Argc; ++I)
    if (!std::strcmp(Argv[I], "--cache-stats") ||
        !std::strcmp(Argv[I], "--fixpoint-stats"))
      setDeprecationWarningsEnabled(false);

  CliOptions Cli;
  // Environment first (BLAZER_DOMAIN, BLAZER_FAULT_PLAN, ...), flags
  // override.
  Cli.Engine.loadEnv("BLAZER");
  if (!parseArgs(Argc, Argv, Cli))
    return 2;

  std::ifstream In(Cli.File);
  if (!In) {
    std::fprintf(stderr, "cannot open '%s'\n", Cli.File.c_str());
    return 2;
  }
  std::ostringstream Buf;
  Buf << In.rdbuf();
  std::string Source = Buf.str();

  BuiltinRegistry Registry = BuiltinRegistry::standard();
  auto Parsed = parseProgram(Source);
  if (!Parsed) {
    std::fprintf(stderr, "%s: parse error: %s\n", Cli.File.c_str(),
                 Parsed.diag().str().c_str());
    return 2;
  }
  auto P = std::make_shared<Program>(Parsed.take());
  auto Checked = analyzeProgram(*P, Registry);
  if (!Checked) {
    std::fprintf(stderr, "%s: %s\n", Cli.File.c_str(),
                 Checked.diag().str().c_str());
    return 2;
  }

  std::vector<std::string> Targets = Cli.Functions;
  if (Targets.empty())
    for (const auto &F : P->Functions)
      Targets.push_back(F->Name);

  // Anything the engine throws past its own recovery layers is an internal
  // error: report and exit 4 (injected aborts skip this and die through the
  // terminate handler, which is the point of the crash-contained bench).
  try {
    int Worst = 0;
    for (const std::string &Name : Targets) {
      if (!P->find(Name)) {
        std::fprintf(stderr, "no function named '%s'\n", Name.c_str());
        return 2;
      }
      CfgFunction F = lowerFunction(P, Name, *Checked, Registry);
      Worst = std::max(Worst, analyzeOne(F, Cli));
    }
    return Worst;
  } catch (const std::exception &Ex) {
    std::fprintf(stderr, "blazer: internal error: %s\n", Ex.what());
    return 4;
  } catch (...) {
    std::fprintf(stderr, "blazer: internal error: unknown exception\n");
    return 4;
  }
}
