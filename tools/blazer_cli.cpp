//===- blazer_cli.cpp - The blazer command-line tool -------------------------===//
//
// Part of the Blazer reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Command-line front end: analyze mini-language source files for timing
/// channels.
///
/// \code
///   blazer [options] <file> [function...]
///
///   --observer=degree|concrete   observability model (default degree)
///   --epsilon=N                  degree-model constant slack (default 32)
///   --threshold=N                concrete-model gap threshold (default 25000)
///   --max-input=N                concrete-model default input max (default 4096)
///   --pin=SYM=VAL                pin a public-knowledge symbol, e.g.
///                                --pin=key.len=4096 (repeatable)
///   --capacity=Q                 verify channel capacity Q instead of tcf
///   --no-attack                  safety verification only
///   --selfcomp                   also run the self-composition baseline
///   --dot                        print the CFG in Graphviz format
///   --regex                      print the annotated most-general trail
///   --max-trails=N --max-depth=N refinement budgets
/// \endcode
///
/// Exit code: 0 when every analyzed function is safe (or capacity-bounded),
/// 2 when some function has an attack specification, 3 on unknown, 1 on
/// usage/compile errors.
///
//===----------------------------------------------------------------------===//

#include "core/Blazer.h"
#include "ir/Cfg.h"
#include "lang/Parser.h"
#include "lang/Sema.h"
#include "selfcomp/SelfComposition.h"

#include <cstdio>
#include <cstring>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

using namespace blazer;

namespace {

struct CliOptions {
  std::string ObserverKind = "degree";
  int64_t Epsilon = 32;
  int64_t Threshold = 25000;
  int64_t MaxInput = 4096;
  std::vector<std::pair<std::string, int64_t>> Pins;
  int Capacity = 0; // 0 = tcf mode.
  bool NoAttack = false;
  bool SelfComp = false;
  bool Dot = false;
  bool Regex = false;
  int MaxTrails = 512;
  int MaxDepth = 12;
  std::string File;
  std::vector<std::string> Functions;
};

void usage(const char *Prog) {
  std::fprintf(
      stderr,
      "usage: %s [options] <file> [function...]\n"
      "  --observer=degree|concrete  observability model (default degree)\n"
      "  --epsilon=N                 degree-model slack (default 32)\n"
      "  --threshold=N               concrete-model threshold (default "
      "25000)\n"
      "  --max-input=N               concrete-model input max (default "
      "4096)\n"
      "  --pin=SYM=VAL               pin a public symbol (repeatable)\n"
      "  --capacity=Q                verify channel capacity Q\n"
      "  --no-attack                 safety verification only\n"
      "  --selfcomp                  also run the self-composition "
      "baseline\n"
      "  --dot                       print the CFG (Graphviz)\n"
      "  --regex                     print the annotated trail expression\n"
      "  --max-trails=N --max-depth=N refinement budgets\n",
      Prog);
}

bool parseArgs(int Argc, char **Argv, CliOptions &Opt) {
  for (int I = 1; I < Argc; ++I) {
    std::string Arg = Argv[I];
    auto Value = [&Arg](const char *Prefix) -> const char * {
      size_t Len = std::strlen(Prefix);
      if (Arg.compare(0, Len, Prefix) == 0)
        return Arg.c_str() + Len;
      return nullptr;
    };
    if (const char *V = Value("--observer=")) {
      Opt.ObserverKind = V;
      if (Opt.ObserverKind != "degree" && Opt.ObserverKind != "concrete") {
        std::fprintf(stderr, "unknown observer '%s'\n", V);
        return false;
      }
    } else if (const char *V = Value("--epsilon=")) {
      Opt.Epsilon = std::atoll(V);
    } else if (const char *V = Value("--threshold=")) {
      Opt.Threshold = std::atoll(V);
    } else if (const char *V = Value("--max-input=")) {
      Opt.MaxInput = std::atoll(V);
    } else if (const char *V = Value("--pin=")) {
      std::string Pin = V;
      size_t Eq = Pin.rfind('=');
      if (Eq == std::string::npos) {
        std::fprintf(stderr, "--pin needs SYM=VAL, got '%s'\n", V);
        return false;
      }
      Opt.Pins.push_back(
          {Pin.substr(0, Eq), std::atoll(Pin.c_str() + Eq + 1)});
    } else if (const char *V = Value("--capacity=")) {
      Opt.Capacity = std::atoi(V);
      if (Opt.Capacity < 1) {
        std::fprintf(stderr, "--capacity needs a positive Q\n");
        return false;
      }
    } else if (Arg == "--no-attack") {
      Opt.NoAttack = true;
    } else if (Arg == "--selfcomp") {
      Opt.SelfComp = true;
    } else if (Arg == "--dot") {
      Opt.Dot = true;
    } else if (Arg == "--regex") {
      Opt.Regex = true;
    } else if (const char *V = Value("--max-trails=")) {
      Opt.MaxTrails = std::atoi(V);
    } else if (const char *V = Value("--max-depth=")) {
      Opt.MaxDepth = std::atoi(V);
    } else if (Arg.rfind("--", 0) == 0) {
      std::fprintf(stderr, "unknown option '%s'\n", Arg.c_str());
      return false;
    } else if (Opt.File.empty()) {
      Opt.File = Arg;
    } else {
      Opt.Functions.push_back(Arg);
    }
  }
  if (Opt.File.empty()) {
    usage(Argv[0]);
    return false;
  }
  return true;
}

BlazerOptions toBlazerOptions(const CliOptions &Cli) {
  BlazerOptions Opt;
  if (Cli.ObserverKind == "degree")
    Opt.Observer = ObserverModel::polynomialDegree(Cli.Epsilon);
  else
    Opt.Observer = ObserverModel::concreteInstructions(Cli.Threshold,
                                                       Cli.MaxInput);
  for (const auto &[Sym, Val] : Cli.Pins)
    Opt.Observer.pinSymbol(Sym, Val);
  Opt.MaxTrails = Cli.MaxTrails;
  Opt.MaxDepth = Cli.MaxDepth;
  Opt.SearchAttack = !Cli.NoAttack;
  return Opt;
}

/// 0 safe, 2 attack, 3 unknown.
int analyzeOne(const CfgFunction &F, const CliOptions &Cli) {
  BlazerOptions Opt = toBlazerOptions(Cli);
  std::printf("==== %s (%zu basic blocks) ====\n", F.Name.c_str(),
              F.blockCount());
  if (Cli.Dot)
    std::printf("%s\n", F.toDot().c_str());

  if (Cli.Capacity > 0) {
    ChannelCapacityResult R = analyzeChannelCapacity(F, Cli.Capacity, Opt);
    std::printf("channel capacity %d: %s (max observed classes per public "
                "input: %d)\n",
                Cli.Capacity,
                R.Bounded ? "BOUNDED"
                          : (R.Known ? "EXCEEDED" : "unknown"),
                R.MaxClasses);
    return R.Bounded ? 0 : (R.Known ? 2 : 3);
  }

  BlazerResult R = analyzeFunction(F, Opt);
  std::printf("%s", R.treeString(F).c_str());
  for (const AttackSpec &Spec : R.Attacks)
    std::printf("%s\n", Spec.str().c_str());

  if (Cli.Regex) {
    TrailExpr::Ptr Regex =
        renderAnnotatedTrail(F, R.Tree[0].Auto, R.Taint, 1 << 14);
    EdgeAlphabet A = EdgeAlphabet::forFunction(F);
    if (Regex)
      std::printf("trmg = %s\n", Regex->str(&A).c_str());
    else
      std::printf("trmg regex exceeds the display budget\n");
  }

  if (Cli.SelfComp) {
    SelfCompResult S =
        verifyBySelfComposition(F, Opt.Observer.threshold());
    std::printf("self-composition baseline: %s\n",
                S.Verified ? "verified"
                           : (S.GapBounded ? "refuted"
                                           : "lost the counter relation"));
  }

  switch (R.Verdict) {
  case VerdictKind::Safe:
    return 0;
  case VerdictKind::Attack:
    return 2;
  case VerdictKind::Unknown:
    return 3;
  }
  return 3;
}

} // namespace

int main(int Argc, char **Argv) {
  CliOptions Cli;
  if (!parseArgs(Argc, Argv, Cli))
    return 1;

  std::ifstream In(Cli.File);
  if (!In) {
    std::fprintf(stderr, "cannot open '%s'\n", Cli.File.c_str());
    return 1;
  }
  std::ostringstream Buf;
  Buf << In.rdbuf();
  std::string Source = Buf.str();

  BuiltinRegistry Registry = BuiltinRegistry::standard();
  auto Parsed = parseProgram(Source);
  if (!Parsed) {
    std::fprintf(stderr, "%s: parse error: %s\n", Cli.File.c_str(),
                 Parsed.diag().str().c_str());
    return 1;
  }
  auto P = std::make_shared<Program>(Parsed.take());
  auto Checked = analyzeProgram(*P, Registry);
  if (!Checked) {
    std::fprintf(stderr, "%s: %s\n", Cli.File.c_str(),
                 Checked.diag().str().c_str());
    return 1;
  }

  std::vector<std::string> Targets = Cli.Functions;
  if (Targets.empty())
    for (const auto &F : P->Functions)
      Targets.push_back(F->Name);

  int Worst = 0;
  for (const std::string &Name : Targets) {
    if (!P->find(Name)) {
      std::fprintf(stderr, "no function named '%s'\n", Name.c_str());
      return 1;
    }
    CfgFunction F = lowerFunction(P, Name, *Checked, Registry);
    Worst = std::max(Worst, analyzeOne(F, Cli));
  }
  return Worst;
}
