#!/usr/bin/env bash
# verify_all.sh - the full verification ladder, in one command.
#
# Runs, in order:
#   1. tier-1:      default preset, every test        (functional baseline)
#   2. tsan:        ThreadSanitizer, `concurrency`    (races, deadlocks —
#                   plus the `ct` label, so the cost-model oracle's parallel
#                   job sweeps run under the race detector too)
#   3. chaos-asan:  ASan+UBSan, `chaos` label         (fault-injection sweep:
#                   500+ seeded plans x 24 benchmarks x jobs {1,8}, asserting
#                   faults degrade verdicts to Unknown but never flip them)
#   4. ct-asan:     ASan+UBSan, `ct` label            (cost-model differential
#                   oracle + constant-time CLI contract under the memory
#                   sanitizers; reuses the chaos rung's build directory)
#   5. arc-cache:   ASan+UBSan, `arccache` label      (arc-cache byte-identity
#                   + staleness-oracle suite under the memory sanitizers;
#                   reuses the chaos rung's build directory)
#   6. fixpoint-ctx: ASan+UBSan, `fixpointctx` label  (context-pool
#                   byte-identity + WTO-reuse oracle suite under the memory
#                   sanitizers; reuses the chaos rung's build directory)
#
# Stops at the first failing rung. Run from the repository root:
#   tools/verify_all.sh [-jN]
#
# Requires cmake >= 3.21 (presets). Each rung configures and builds its own
# binary dir (build/, build-tsan/, build-asan/), so rungs never contaminate
# each other and incremental reruns are cheap.

set -euo pipefail

JOBS_FLAG="${1:--j$(nproc 2>/dev/null || echo 4)}"

cd "$(dirname "$0")/.."

run_rung() {
  local name="$1" configure="$2" test_preset="$3"
  echo
  echo "==== [$name] configure + build + test ===="
  cmake --preset "$configure"
  cmake --build --preset "$configure" "$JOBS_FLAG"
  ctest --preset "$test_preset"
}

run_rung "tier-1 (default)" default default
run_rung "concurrency (tsan)" tsan tsan
run_rung "chaos (asan-ubsan)" chaos-asan chaos-asan
run_rung "ct (asan-ubsan)" asan-ubsan asan-ct
run_rung "arc-cache (asan-ubsan)" asan-ubsan asan-arccache
run_rung "fixpoint-ctx (asan-ubsan)" asan-ubsan asan-fixpointctx

echo
echo "==== all verification rungs passed ===="
